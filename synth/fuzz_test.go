package synth

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// fuzzSeeds returns the corpus both fuzz targets start from: the README /
// asm.go grammar example, a disassembly of one small generated program per
// pattern family (so every instruction form and .data/.word shape appears),
// and malformed fragments covering each diagnostic path.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	seeds := [][]byte{
		// The documented grammar example (asm.go / README).
		[]byte(".name vpr.mini\n.entry start\n.data 0x10000\n.word 7, 0x20, -3\n\n" +
			"start:\n\tli r1, 0\nloop:\tbge r1, r2, done\n\tld r3, 8(r4)\n\taddi r1, r1, 1\n\tj loop\ndone:\thalt\n"),
		// Every operand form on one line each.
		[]byte(".name forms\nadd r1, r2, r3\naddi r4, r5, -8\nmov r6, r7\nli r8, 0x7fffffffffffffff\n" +
			"ld r9, -16(r10)\nst r11, 0(r12)\nbeq r1, r2, 0\njal r13, 1\njr r13\nnop\nhalt\n"),
		// Malformed fragments: one per diagnostic family.
		[]byte("bogus r1, r2\n"),
		[]byte("ld r1, 8[r2]\n"),
		[]byte(".word 1, 2\n"),
		[]byte(".data 7\n"),
		[]byte("j nowhere\n"),
		[]byte("dup: nop\ndup: nop\n"),
		[]byte(".entry missing\nhalt\n"),
		[]byte(".data 0x7ffffffffffffff8\n.word 1, 2\nhalt\n"),
		[]byte(""),
	}
	// One small scenario per family: footprints at the validation floor keep
	// the seed corpus kilobytes, not megabytes.
	for _, fam := range FamilyNames() {
		p, err := Generate(Spec{Family: fam, Seed: 7, FootprintWords: 256, Iters: 8})
		if err != nil {
			tb.Fatalf("seed spec %s: %v", fam, err)
		}
		seeds = append(seeds, Disassemble(p))
	}
	// And one curated zoo scenario, shrunk to keep assembly fast.
	z := Zoo()[0]
	z.FootprintWords, z.Iters = 1024, 64
	p, err := Generate(z)
	if err != nil {
		tb.Fatal(err)
	}
	return append(seeds, Disassemble(p))
}

// FuzzAssemble asserts the assembler's total-function contract on arbitrary
// source: it never panics, every diagnostic is tied to a real source line,
// and anything it accepts disassembles into re-assemblable source producing
// an equivalent program.
func FuzzAssemble(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		p, err := Assemble(src)
		if err != nil {
			checkDiagnostics(t, src, err)
			return
		}
		d := Disassemble(p)
		p2, err := Assemble(d)
		if err != nil {
			t.Fatalf("accepted program's disassembly does not re-assemble: %v\n--- disassembly:\n%s", err, d)
		}
		if !reflect.DeepEqual(p.Insts, p2.Insts) {
			t.Fatalf("re-assembled instructions differ\n--- disassembly:\n%s", d)
		}
		if p.Entry != p2.Entry || p.Name != p2.Name {
			t.Fatalf("re-assembly changed entry %d->%d or name %q->%q", p.Entry, p2.Entry, p.Name, p2.Name)
		}
		if !reflect.DeepEqual(p.Data.Runs(), p2.Data.Runs()) {
			t.Fatalf("re-assembled data image differs\n--- disassembly:\n%s", d)
		}
	})
}

// checkDiagnostics walks a (possibly joined) assembly error: every LineError
// must point into the source, and the whole must render non-empty.
func checkDiagnostics(t *testing.T, src []byte, err error) {
	t.Helper()
	if err.Error() == "" {
		t.Fatal("assembly failed with an empty message")
	}
	lines := 1 + bytes.Count(src, []byte("\n"))
	var walk func(error)
	walk = func(e error) {
		var le *LineError
		if errors.As(e, &le) && (le.Line < 1 || le.Line > lines) {
			t.Fatalf("diagnostic %q points outside the %d-line source", le, lines)
		}
		if joined, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range joined.Unwrap() {
				walk(sub)
			}
		}
	}
	walk(err)
}

// FuzzDisassembleRoundTrip asserts byte-stability: for any accepted source,
// disassembling the re-assembled program reproduces the first disassembly
// exactly (the canonical-form fixed point the .prx corpus tooling relies
// on).
func FuzzDisassembleRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		d1 := Disassemble(p)
		p2, err := Assemble(d1)
		if err != nil {
			t.Fatalf("disassembly does not re-assemble: %v\n--- disassembly:\n%s", err, d1)
		}
		d2 := Disassemble(p2)
		if !bytes.Equal(d1, d2) {
			i := 0
			for i < len(d1) && i < len(d2) && d1[i] == d2[i] {
				i++
			}
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("disassembly is not a fixed point at byte %d:\n--- first:  ...%s\n--- second: ...%s",
				i, clip(d1, lo, i+60), clip(d2, lo, i+60))
		}
	})
}

func clip(b []byte, lo, hi int) string {
	if hi > len(b) {
		hi = len(b)
	}
	if lo > len(b) {
		lo = len(b)
	}
	return strings.ToValidUTF8(string(b[lo:hi]), "?")
}
