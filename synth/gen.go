package synth

import (
	"preexec"
	"preexec/internal/isa"
	"preexec/internal/program"
)

// aliasWords is the L2 way stride in words: 64KB (1024 sets x 64B lines),
// the offset at which two addresses map to the same L2 set. The stride
// family's Alias knob spaces its streams by exactly this.
const (
	aliasWords = 8192
	aliasBytes = aliasWords * 8
)

// Register allocation shared by all generators. Every generator stays well
// inside the 32 architectural registers.
const (
	rI   isa.Reg = 1 // induction variable
	rN   isa.Reg = 2 // iteration bound
	rAcc isa.Reg = 3 // live accumulator
	rB1  isa.Reg = 4 // data-structure base #1
	rB2  isa.Reg = 5 // data-structure base #2
	rB3  isa.Reg = 6 // data-structure base #3
	rMsk isa.Reg = 7 // index mask
	rK   isa.Reg = 8 // hash/stride multiplier
	rP   isa.Reg = 9 // chase/walk pointer
	rT   isa.Reg = 10
	rA   isa.Reg = 11 // effective-address scratch
	rV   isa.Reg = 12 // loaded value
	rV2  isa.Reg = 13
	rS   isa.Reg = 14 // per-iteration hash state
	rW   isa.Reg = 15 // compute-chain scratch
	rKc  isa.Reg = 16 // compute-chain multiplier
)

// hashMul is the multiplicative-hash constant (Knuth's 2^32/phi) used to
// scatter register-computed indices.
const hashMul = 2654435761

// prologue emits the shared loop setup and returns the builder positioned
// before the "loop" label. The caller emits the body between Label("loop")'s
// bound check and the back jump via body().
func loopProgram(name string, iters, compute int, setup func(b *program.Builder), body func(b *program.Builder)) *preexec.Program {
	b := program.NewBuilder(name)
	setup(b)
	b.Li(rI, 0).
		Li(rN, int64(iters)).
		Li(rAcc, 0)
	if compute > 0 {
		b.Li(rKc, 0x9E37)
	}
	b.Label("loop").
		Bge(rI, rN, "exit")
	body(b)
	// The compute chain: serial multiplies seeded from the induction
	// variable, independent of the body's loads — per-iteration latency the
	// machine (or a p-thread running ahead of it) can overlap with misses.
	if compute > 0 {
		b.Mov(rW, rI)
		for c := 0; c < compute; c++ {
			b.Mul(rW, rW, rKc)
		}
		b.Add(rAcc, rAcc, rW)
	}
	b.Addi(rI, rI, 1).
		J("loop")
	b.Label("exit").Halt()
	return b.MustBuild()
}

// genChase builds a pointer chase over a ring of two-word nodes
// [nextPtr, value]. Uniform (Clusters = 0) rings miss on nearly every node;
// clustered rings visit ~4 nodes per line before leaving it.
func genChase(s Spec) *preexec.Program {
	nodes := s.FootprintWords / 2
	rng := newXorshift(s.Seed ^ 0x6368617365) // "chase"
	var next []int
	if s.Clusters >= 2 {
		next = clusteredRing(rng, nodes, s.Clusters)
	} else {
		next = rng.cycle(nodes)
	}
	return loopProgram(s.Name, s.Iters, s.Compute,
		func(b *program.Builder) {
			base := b.Alloc(int64(nodes * 2))
			for i := 0; i < nodes; i++ {
				addr := base + int64(i*16)
				b.SetWord(addr, base+int64(next[i]*16))
				b.SetWord(addr+8, int64(rng.intn(509)+1))
			}
			b.Li(rP, base)
		},
		func(b *program.Builder) {
			b.Ld(rP, rP, 0). // p = p->next: the problem load
						Ld(rV, rP, 8).
						Add(rAcc, rAcc, rV)
		})
}

// clusteredRing returns successor links that visit every node once, walking
// a random path through each contiguous cluster before jumping to the next.
func clusteredRing(rng *xorshift, nodes, k int) []int {
	order := make([]int, 0, nodes)
	sz := nodes / k
	for c := 0; c < k; c++ {
		lo, hi := c*sz, (c+1)*sz
		if c == k-1 {
			hi = nodes
		}
		p := make([]int, hi-lo)
		for i := range p {
			p[i] = lo + i
		}
		rng.shuffle(p)
		order = append(order, p...)
	}
	next := make([]int, nodes)
	for j := range order {
		next[order[j]] = order[(j+1)%nodes]
	}
	return next
}

// genStride builds a strided stream: index = (i * Stride) & mask, address
// computed purely in registers. With Alias = a, the stream round-robins a
// copies spaced one L2 way stride apart, colliding in the same sets.
func genStride(s Spec) *preexec.Program {
	words, banks := s.FootprintWords, 1
	if s.Alias > 0 {
		banks = s.Alias
	}
	rng := newXorshift(s.Seed ^ 0x737472696465) // "stride"
	return loopProgram(s.Name, s.Iters, s.Compute,
		func(b *program.Builder) {
			var base int64
			if banks == 1 {
				base = b.Alloc(int64(words))
			} else {
				base = b.Alloc(int64(banks * aliasWords))
			}
			for k := 0; k < banks; k++ {
				for i := 0; i < words; i++ {
					b.SetWord(base+int64(k)*aliasBytes+int64(i*8), int64(rng.intn(97)+1))
				}
			}
			b.Li(rB1, base).
				Li(rMsk, int64(words-1)).
				Li(rK, int64(s.Stride))
		},
		func(b *program.Builder) {
			b.Mul(rT, rI, rK).
				And(rT, rT, rMsk)
			if banks > 1 {
				b.Andi(rA, rI, int64(banks-1)).
					Slli(rA, rA, 16) // bank * 64KB: same L2 set as bank 0
			}
			b.Slli(rT, rT, 3).
				Add(rT, rT, rB1)
			if banks > 1 {
				b.Add(rT, rT, rA)
			}
			b.Ld(rV, rT, 0). // the problem load
						Add(rAcc, rAcc, rV)
		})
}

// genHash builds an open-addressing probe: the first index is a
// multiplicative hash of the induction variable (register-computed), and
// each deeper probe hashes the previous probe's loaded value — a dependent
// load chain of length Depth.
func genHash(s Spec) *preexec.Program {
	words := s.FootprintWords
	rng := newXorshift(s.Seed ^ 0x68617368) // "hash"
	return loopProgram(s.Name, s.Iters, s.Compute,
		func(b *program.Builder) {
			base := b.Alloc(int64(words))
			for i := 0; i < words; i++ {
				b.SetWord(base+int64(i*8), int64(rng.next()>>1)+1)
			}
			b.Li(rB1, base).
				Li(rMsk, int64(words-1)).
				Li(rK, hashMul)
		},
		func(b *program.Builder) {
			b.Mul(rS, rI, rK).
				And(rS, rS, rMsk)
			for d := 0; d < s.Depth; d++ {
				b.Slli(rA, rS, 3).
					Add(rA, rA, rB1).
					Ld(rV, rA, 0) // probe d
				if d < s.Depth-1 {
					b.Mul(rS, rV, rK). // next probe depends on this load
								And(rS, rS, rMsk)
				}
			}
			b.Add(rAcc, rAcc, rV)
		})
}

// btreeDepth returns the depth (levels) of the largest perfect binary tree
// of 4-word nodes fitting the footprint.
func btreeDepth(footprintWords int) int {
	nodes := footprintWords / 4
	d := 0
	for (1<<(d+1))-1 <= nodes {
		d++
	}
	return d
}

// genBtree builds a perfect binary tree of 4-word nodes
// [leftPtr, rightPtr, key, value] and walks root-to-leaf each iteration,
// steered by the bits of a hashed search key. The child pointer is selected
// arithmetically (offset = bit << 3) rather than by branching, so every
// level is one static dependent load: slice trees aggregate across walks,
// and a p-thread races through the cache-resident upper levels to tolerate
// the lower levels' misses — coverage sits between the pure chase (none)
// and the register-addressed families (high), and a Depth cap or a small
// footprint collapses it to an L2-resident "nothing to tolerate" case.
func genBtree(s Spec) *preexec.Program {
	depth := btreeDepth(s.FootprintWords)
	nodes := (1 << depth) - 1
	steps := depth - 1
	if s.Depth > 0 && s.Depth < steps {
		steps = s.Depth
	}
	rng := newXorshift(s.Seed ^ 0x6274726565) // "btree"
	return loopProgram(s.Name, s.Iters, s.Compute,
		func(b *program.Builder) {
			base := b.Alloc(int64(nodes * 4))
			nodeAddr := func(i int) int64 { return base + int64(i*32) }
			for i := 0; i < nodes; i++ {
				l, r := 2*i+1, 2*i+2
				if l < nodes {
					b.SetWord(nodeAddr(i), nodeAddr(l))
					b.SetWord(nodeAddr(i)+8, nodeAddr(r))
				} else {
					// Leaves loop back to the root; the walk never follows
					// them, but the image stays well-formed.
					b.SetWord(nodeAddr(i), base)
					b.SetWord(nodeAddr(i)+8, base)
				}
				b.SetWord(nodeAddr(i)+16, int64(i))
				b.SetWord(nodeAddr(i)+24, int64(rng.intn(1021)+1))
			}
			b.Li(rB1, base).
				Li(rK, hashMul)
		},
		func(b *program.Builder) {
			b.Mul(rS, rI, rK).
				Mov(rP, rB1) // restart at the root
			for j := 0; j < steps; j++ {
				b.Andi(rT, rS, 1).
					Slli(rT, rT, 3). // 0 = left field, 8 = right field
					Srli(rS, rS, 1).
					Add(rA, rP, rT).
					Ld(rP, rA, 0) // child pointer: dependent load
			}
			b.Ld(rV, rP, 24). // the reached node's value
						Add(rAcc, rAcc, rV)
		})
}

// graphNodes returns the node count for a graph spec: the largest power of
// two such that the value array plus the Degree-wide adjacency fits the
// footprint.
func graphNodes(footprintWords, degree int) int {
	n := 1
	for 2*n*(degree+1) <= footprintWords {
		n *= 2
	}
	return n
}

// graphOrderWords is the worklist length: small enough to stay resident, so
// the order load hits while the adjacency and value gathers miss.
const graphOrderWords = 1024

// genGraph builds a worklist traversal: order[] supplies the next node
// (resident index load), the node's Degree-wide adjacency list is gathered
// (irregular), and each neighbour's value load depends on its adjacency
// load — two levels of indirection per edge.
func genGraph(s Spec) *preexec.Program {
	nodes := graphNodes(s.FootprintWords, s.Degree)
	logDeg := 0
	for 1<<logDeg < s.Degree {
		logDeg++
	}
	rng := newXorshift(s.Seed ^ 0x6772617068) // "graph"
	return loopProgram(s.Name, s.Iters, s.Compute,
		func(b *program.Builder) {
			adj := b.Alloc(int64(nodes * s.Degree))
			val := b.Alloc(int64(nodes))
			order := b.Alloc(graphOrderWords)
			for i := 0; i < nodes*s.Degree; i++ {
				b.SetWord(adj+int64(i*8), int64(rng.intn(nodes)))
			}
			for i := 0; i < nodes; i++ {
				b.SetWord(val+int64(i*8), int64(rng.intn(251)+1))
			}
			for i := 0; i < graphOrderWords; i++ {
				b.SetWord(order+int64(i*8), int64(rng.intn(nodes)))
			}
			b.Li(rB1, adj).
				Li(rB2, val).
				Li(rB3, order)
		},
		func(b *program.Builder) {
			b.Andi(rT, rI, graphOrderWords-1).
				Slli(rT, rT, 3).
				Add(rT, rT, rB3).
				Ld(rS, rT, 0). // next node id: resident worklist
				Slli(rA, rS, int64(logDeg+3)).
				Add(rA, rA, rB1) // adjacency base for the node
			for j := 0; j < s.Degree; j++ {
				b.Ld(rV, rA, int64(j*8)). // neighbour id: irregular
								Slli(rT, rV, 3).
								Add(rT, rT, rB2).
								Ld(rV2, rT, 0). // neighbour value: dependent gather
								Add(rAcc, rAcc, rV2)
			}
		})
}

// genGather builds an indirect gather kernel: a streamed index array feeds
// data[idx[t]] gathers; with Scatter, each gathered word is rewritten
// through the same irregular address.
func genGather(s Spec) *preexec.Program {
	entries := s.FootprintWords / 2
	dataWords := s.FootprintWords / 2
	rng := newXorshift(s.Seed ^ 0x676174686572) // "gather"
	return loopProgram(s.Name, s.Iters, s.Compute,
		func(b *program.Builder) {
			idx := b.Alloc(int64(entries))
			data := b.Alloc(int64(dataWords))
			for i := 0; i < entries; i++ {
				b.SetWord(idx+int64(i*8), int64(rng.intn(dataWords)))
			}
			for i := 0; i < dataWords; i++ {
				b.SetWord(data+int64(i*8), int64(i%89+1))
			}
			b.Li(rB1, idx).
				Li(rB2, data).
				Li(rMsk, int64(entries-1))
		},
		func(b *program.Builder) {
			b.And(rT, rI, rMsk).
				Slli(rT, rT, 3).
				Add(rT, rT, rB1).
				Ld(rS, rT, 0). // index stream: sequential lines
				Slli(rA, rS, 3).
				Add(rA, rA, rB2).
				Ld(rV, rA, 0). // the gather: the problem load
				Add(rAcc, rAcc, rV)
			if s.Scatter {
				b.Xor(rV2, rV, rI).
					St(rV2, rA, 0) // the scatter: irregular store
			}
		})
}
