package synth

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"preexec"
)

// smallEngine returns an engine with short windows so evaluations stay fast.
func smallEngine() *preexec.Engine {
	cfg := preexec.DefaultConfig()
	cfg.Machine.WarmInsts, cfg.Machine.MeasureInsts = 5_000, 15_000
	return preexec.New(preexec.WithConfig(cfg))
}

// TestEvaluateDeterministic pins the end-to-end determinism contract: the
// same Spec produces a bit-identical evaluation report.
func TestEvaluateDeterministic(t *testing.T) {
	s := Spec{Family: "graph", Seed: 11, FootprintWords: 1 << 14, Iters: 6000}
	eng := smallEngine()
	var got [2][]byte
	for i := range got {
		rep, err := eng.Evaluate(context.Background(), MustGenerate(s))
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		got[i] = buf
	}
	if string(got[0]) != string(got[1]) {
		t.Errorf("two evaluations of the same spec differ:\n%s\n%s", got[0], got[1])
	}
}

// TestRegisterEndToEnd drives registered synthetic specs and a .prx
// workload through every registry consumer: WorkloadByName, EvaluateSuite,
// and Sweep.
func TestRegisterEndToEnd(t *testing.T) {
	specs := []Spec{
		{Name: "it.chase", Family: "chase", Seed: 2, FootprintWords: 1 << 13, Iters: 5000},
		{Name: "it.stride", Family: "stride", Seed: 2, FootprintWords: 1 << 13, Iters: 5000},
	}
	if err := Register(specs...); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range specs {
			preexec.UnregisterWorkload(s.Name)
		}
	})

	prxW, err := WorkloadFromPRX([]byte(
		".name it.prx\n.data 0x200\n.word 3, 4\nloop:\n\tli r1, 512\n\tld r2, 0(r1)\n\tld r3, 8(r1)\n\tadd r4, r2, r3\n\taddi r5, r5, 1\n\tslti r6, r5, 9000\n\tbne r6, r0, loop\n\thalt\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := preexec.RegisterWorkload(prxW); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { preexec.UnregisterWorkload("it.prx") })

	names := []string{"it.chase", "it.stride", "it.prx"}
	for _, name := range names {
		if _, err := preexec.WorkloadByName(name); err != nil {
			t.Fatalf("WorkloadByName(%s): %v", name, err)
		}
	}

	// EvaluateSuite over a mix of builtin and registered names.
	eng := smallEngine()
	reports, err := preexec.EvaluateSuite(context.Background(), eng,
		append([]string{"crafty"}, names...), 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d reports, want 4", len(reports))
	}
	for i, rep := range reports {
		if rep.Base.Retired == 0 {
			t.Errorf("report %d (%s) is empty", i, rep.Program)
		}
	}

	// A name error must list the registered names too.
	_, err = preexec.EvaluateSuite(context.Background(), eng, []string{"nonesuch"}, 1, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "it.prx") {
		t.Errorf("suite name error %v should list registered names", err)
	}

	// Sweep the registered benches across a two-point selection grid.
	benches, err := preexec.SweepBenches(names, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := eng.Config()
	cfgNoOpt := cfg
	cfgNoOpt.Selection.Optimize = false
	cfgNoOpt.Selection.Merge = false
	res, err := (&preexec.Sweep{Workers: 2}).Run(context.Background(), benches,
		[]preexec.ConfigPoint{{Name: "base", Config: cfg}, {Name: "raw", Config: cfgNoOpt}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(names)*2 {
		t.Fatalf("sweep produced %d cells, want %d", len(res.Cells), len(names)*2)
	}
	for _, cell := range res.Cells {
		if cell.Err != nil {
			t.Errorf("cell %s/%s: %v", cell.Bench, cell.Point, cell.Err)
		}
	}
	// Selection-only grid: the stage cache must have shared base runs and
	// profiles across the two points.
	if res.Cache.BaseRuns != int64(len(names)) || res.Cache.BaseHits != int64(len(names)) {
		t.Errorf("cache stats %+v: want %d base runs + %d shared hits", res.Cache, len(names), len(names))
	}
}

// TestRegisterRollsBack pins Register's atomicity: a bad spec in the batch
// leaves no partial registrations behind.
func TestRegisterRollsBack(t *testing.T) {
	err := Register(
		Spec{Name: "rb.ok", Family: "chase", Seed: 1, FootprintWords: 1 << 12, Iters: 100},
		Spec{Name: "rb.bad", Family: "chase", Seed: 1, FootprintWords: 100, Iters: 100},
	)
	if err == nil {
		t.Fatal("Register with an invalid spec should fail")
	}
	if _, lookupErr := preexec.WorkloadByName("rb.ok"); lookupErr == nil {
		preexec.UnregisterWorkload("rb.ok")
		t.Error("rb.ok stayed registered after a failed batch")
	}
}
