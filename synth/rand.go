package synth

// xorshift is the deterministic PRNG behind every generator's data layout
// (the same recurrence the builtin workloads use): not for statistics, only
// for reproducible, "irregular enough" addresses.
type xorshift uint64

func newXorshift(seed uint64) *xorshift {
	x := xorshift(seed*2862933555777941757 + 3037000493)
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// intn returns a value in [0, n).
func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// cycle returns successor links forming one random cycle over [0, n)
// (Sattolo's algorithm), so a pointer chase visits every node with no short
// cycles.
func (x *xorshift) cycle(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := x.intn(i)
		p[i], p[j] = p[j], p[i]
	}
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[p[i]] = p[i+1]
	}
	next[p[n-1]] = p[0]
	return next
}

// shuffle permutes s in place (Fisher-Yates).
func (x *xorshift) shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := x.intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
