package synth

// Differential replay testing over the synthetic corpus. The timing package
// pins Replay == RunContext on the ten built-in workloads; these tests extend
// the same bit-for-bit contract to the curated Zoo scenarios (all five
// simulation modes from one recorded trace each) and — via the shared .prx
// fuzz corpus — to arbitrary programs the assembler accepts.

import (
	"context"
	"testing"

	"preexec"
	"preexec/internal/advantage"
	"preexec/internal/selector"
	"preexec/internal/slice"
	"preexec/internal/timing"
)

// replayModes is every simulation mode a recorded base-run trace must serve.
var replayModes = []timing.Mode{
	timing.ModeBase,
	timing.ModeNormal,
	timing.ModeOverheadExecute,
	timing.ModeOverheadSequence,
	timing.ModeLatencyOnly,
}

// replaySelect mirrors the timing package's test selection helper: profile
// the sample window and select p-threads with the default advantage model.
// A program the profiler rejects simply replays unassisted (nil p-threads) —
// the equivalence contract holds either way.
func replaySelect(prog *preexec.Program, warm, measure int64) []*preexec.PThread {
	forest, err := slice.ProfileWhole(prog, slice.ProfileOptions{WarmInsts: warm, MaxInsts: measure})
	if err != nil {
		return nil
	}
	res := selector.SelectForest(forest, selector.Options{Params: advantage.DefaultParams(1.0), Merge: true})
	return res.PThreads
}

// TestReplayMatchesSimulationZoo pins replay to full simulation across the
// whole curated corpus: for each Zoo scenario, one trace recorded at the
// run's windows serves all five modes bit-identically, selected p-threads in
// play.
func TestReplayMatchesSimulationZoo(t *testing.T) {
	const warm, measure = 4_000, 12_000
	for _, z := range Zoo() {
		z := z
		t.Run(z.Name, func(t *testing.T) {
			t.Parallel()
			prog := MustGenerate(z)
			pts := replaySelect(prog, warm, measure)
			cfg := timing.DefaultConfig()
			cfg.WarmInsts, cfg.MaxInsts = warm, measure
			tr, err := timing.RecordTrace(context.Background(), prog, cfg)
			if err != nil {
				t.Fatalf("RecordTrace: %v", err)
			}
			for _, mode := range replayModes {
				cfg.Mode = mode
				want, err := timing.Run(prog, pts, cfg)
				if err != nil {
					t.Fatalf("%s: simulation: %v", mode, err)
				}
				got, err := timing.Replay(context.Background(), tr, pts, cfg)
				if err != nil {
					t.Fatalf("%s: replay: %v", mode, err)
				}
				if got != want {
					t.Errorf("%s: replay diverges from simulation\n got: %+v\nwant: %+v", mode, got, want)
				}
			}
		})
	}
}

// FuzzReplayEquivalence is the replay-vs-full-simulation differential over
// arbitrary source: anything the assembler accepts must replay from a
// recorded trace with Stats byte-for-byte equal to RunContext, in every
// mode. It starts from the same .prx seed corpus as the assembler targets,
// so the mutator explores real instruction mixes rather than noise.
func FuzzReplayEquivalence(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		const warm, measure = 1_000, 4_000
		pts := replaySelect(p, warm, measure)
		cfg := timing.DefaultConfig()
		cfg.WarmInsts, cfg.MaxInsts = warm, measure
		tr, err := timing.RecordTrace(context.Background(), p, cfg)
		if err != nil {
			t.Fatalf("RecordTrace: %v\n--- source:\n%s", err, src)
		}
		for _, mode := range replayModes {
			cfg.Mode = mode
			want, werr := timing.RunContext(context.Background(), p, pts, cfg)
			got, rerr := timing.Replay(context.Background(), tr, pts, cfg)
			if (werr != nil) != (rerr != nil) {
				t.Fatalf("%s: error mismatch: simulation=%v replay=%v\n--- source:\n%s", mode, werr, rerr, src)
			}
			if werr != nil {
				continue
			}
			if got != want {
				t.Fatalf("%s: replay diverges from simulation\n got: %+v\nwant: %+v\n--- source:\n%s", mode, got, want, src)
			}
		}
	})
}
