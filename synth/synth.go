// Package synth mass-produces memory-behaviour scenarios for the
// pre-execution framework, turning the ten fixed benchmark stand-ins of
// package workload into an unbounded workload axis.
//
// It has two halves:
//
//   - Scenario generators: a Spec (family, seed, footprint, iteration
//     count, pattern-specific knobs) compiles into a *preexec.Program via
//     Generate. Six composable pattern families are built in — pointer
//     chase (uniform and clustered), strided stream (with conflict
//     aliasing), hash-table probe, binary-tree walk, graph/worklist
//     traversal, and an indirect gather/scatter kernel — each engineered so
//     pre-execution coverage and latency tolerance vary meaningfully across
//     its knob space (a small footprint makes any family an L2-resident,
//     crafty-like "nothing to tolerate" case). Generation is
//     bit-deterministic: the same Spec always yields a bit-identical
//     program, and therefore a bit-identical evaluation report.
//
//   - A textual PRX format: Assemble turns ".prx" source (mnemonics,
//     labels, .name/.entry/.data/.word directives) into a program with
//     line-precise errors, and Disassemble renders any program back into
//     canonical source, byte-stable under re-assembly.
//
// Register wires specs (and WorkloadFromPRX wires assembled sources) into
// the global workload registry, after which they are first-class
// benchmarks: preexec.WorkloadByName, preexec.EvaluateSuite,
// preexec.SweepBenches, and the command-line tools all accept them by
// name. cmd/tgen expands spec grids into .prx corpora or sweeps them
// directly.
package synth

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"preexec"
)

// Spec is one parameterized scenario: a pattern family plus the knobs that
// place it in memory-behaviour space. The zero values of the family knobs
// select sensible defaults (see Family.Knobs); knobs irrelevant to the
// spec's family are ignored and excluded from the auto-generated name.
type Spec struct {
	// Name labels the generated program and registry entry. Empty means
	// auto-name from the family and knobs (see AutoName).
	Name string `json:"name,omitempty"`
	// Family selects the pattern generator: chase, stride, hash, btree,
	// graph, or gather.
	Family string `json:"family"`
	// Seed makes the data layout deterministic: equal specs generate
	// bit-identical programs.
	Seed uint64 `json:"seed"`
	// FootprintWords is the data footprint in 8-byte words; it must be a
	// power of two in [128, 1<<22]. Footprints well beyond the 32K-word L2
	// miss heavily; small ones are L2-resident "nothing to tolerate" cases.
	FootprintWords int `json:"footprint_words"`
	// Iters is the iteration count of the scenario's main loop (scaled by
	// the workload scale multiplier when registered).
	Iters int `json:"iters"`

	// Clusters (chase) groups the chase ring into this many contiguous
	// clusters visited one after another, giving the chase spatial locality
	// (~4 nodes per line instead of ~1). 0 = uniform Sattolo ring.
	Clusters int `json:"clusters,omitempty"`
	// Stride (stride) is the stream stride in words (default 8 = one new
	// line per access; 1 = sequential, nearly miss-free).
	Stride int `json:"stride,omitempty"`
	// Alias (stride) interleaves this many streams offset by exactly the
	// L2 way stride (64KB) so they collide in the same cache sets: a
	// power of two in [2, 32], values beyond the associativity (4) thrash.
	// 0 = a single stream. Requires FootprintWords <= 8192.
	Alias int `json:"alias,omitempty"`
	// Depth (hash) is the probe-chain length: probe d's index is hashed
	// from probe d-1's loaded value, so depth 1 is purely
	// register-computed (vpr.p-like) and depth >= 2 is a dependent load
	// chain (mcf-like). Default 2. (btree) caps the walk depth; 0 = walk
	// to the leaves.
	Depth int `json:"depth,omitempty"`
	// Degree (graph) is the adjacency degree: neighbours gathered per
	// visited node, a power of two in [1, 16]. Default 4.
	Degree int `json:"degree,omitempty"`
	// Scatter (gather) adds an irregular store back through the gathered
	// address, exercising the store path (vortex-like store-load pairs).
	Scatter bool `json:"scatter,omitempty"`
	// Compute adds a chain of this many dependent multiplies per iteration
	// (independent of the problem load), lengthening the iteration's
	// non-memory critical path — work that gives p-threads latency to
	// tolerate. At most 64.
	Compute int `json:"compute,omitempty"`
}

// maxIters bounds Spec.Iters; the scale multiplier saturates here too.
const maxIters = 50_000_000

// Family describes one pattern family.
type Family struct {
	Name string
	// Description summarizes the memory-behaviour signature.
	Description string
	// Knobs documents the family-specific Spec fields and defaults.
	Knobs string

	gen func(s Spec) *preexec.Program
}

var families = map[string]Family{
	"chase": {
		Name:        "chase",
		Description: "pointer chase over a ring of nodes; each miss feeds the next miss's address (mcf-like low coverage)",
		Knobs:       "Clusters: 0 = uniform ring, k >= 2 = k contiguous clusters (spatial locality)",
		gen:         genChase,
	},
	"stride": {
		Name:        "stride",
		Description: "strided stream with register-computed addresses (vpr.p-like high coverage)",
		Knobs:       "Stride: words between accesses (default 8); Alias: same-set streams, > 4 thrash the L2",
		gen:         genStride,
	},
	"hash": {
		Name:        "hash",
		Description: "hash-table probe; depth-1 probes are register-addressed, deeper chains are dependent loads",
		Knobs:       "Depth: probe-chain length 1..8 (default 2)",
		gen:         genHash,
	},
	"btree": {
		Name:        "btree",
		Description: "binary-tree walk; hot upper levels hit, random leaves miss (scope-sensitive slices)",
		Knobs:       "Depth: walk-depth cap, 0 = to the leaves",
		gen:         genBtree,
	},
	"graph": {
		Name:        "graph",
		Description: "worklist graph traversal: index load, adjacency gather, dependent value gather (vpr.r-like)",
		Knobs:       "Degree: neighbours per node, power of two 1..16 (default 4)",
		gen:         genGraph,
	},
	"gather": {
		Name:        "gather",
		Description: "indirect gather through a streamed index array, optionally scattering back (vortex-like stores)",
		Knobs:       "Scatter: store back through the gathered address",
		gen:         genGather,
	},
}

// Families returns the pattern families in name order.
func Families() []Family {
	out := make([]Family, 0, len(families))
	for _, f := range families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyNames returns the family names in order.
func FamilyNames() []string {
	fs := Families()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}

// normalize validates the spec, applies family defaults, and fills an
// auto-generated name if none was given.
func (s Spec) normalize() (Spec, error) {
	if _, ok := families[s.Family]; !ok {
		return s, fmt.Errorf("synth: unknown family %q (valid: %s)",
			s.Family, strings.Join(FamilyNames(), ", "))
	}
	fp := s.FootprintWords
	if fp < 128 || fp > 1<<22 || fp&(fp-1) != 0 {
		return s, fmt.Errorf("synth: %s: FootprintWords %d, want a power of two in [128, %d]", s.Family, fp, 1<<22)
	}
	if s.Iters < 1 || s.Iters > maxIters {
		return s, fmt.Errorf("synth: %s: Iters %d, want [1, 50M]", s.Family, s.Iters)
	}
	if s.Compute < 0 || s.Compute > 64 {
		return s, fmt.Errorf("synth: %s: Compute %d, want [0, 64]", s.Family, s.Compute)
	}
	switch s.Family {
	case "chase":
		nodes := fp / 2
		if s.Clusters < 0 || s.Clusters == 1 || s.Clusters > nodes/4 {
			return s, fmt.Errorf("synth: chase: Clusters %d, want 0 or [2, nodes/4 = %d]", s.Clusters, nodes/4)
		}
	case "stride":
		if s.Stride == 0 {
			s.Stride = 8
		}
		if s.Stride < 1 || s.Stride > fp/2 {
			return s, fmt.Errorf("synth: stride: Stride %d, want [1, FootprintWords/2 = %d]", s.Stride, fp/2)
		}
		if s.Alias != 0 {
			if s.Alias < 2 || s.Alias > 32 || s.Alias&(s.Alias-1) != 0 {
				return s, fmt.Errorf("synth: stride: Alias %d, want 0 or a power of two in [2, 32]", s.Alias)
			}
			if fp > aliasWords {
				return s, fmt.Errorf("synth: stride: Alias needs FootprintWords <= %d (one L2 way stride), have %d", aliasWords, fp)
			}
		}
	case "hash":
		if s.Depth == 0 {
			s.Depth = 2
		}
		if s.Depth < 1 || s.Depth > 8 {
			return s, fmt.Errorf("synth: hash: Depth %d, want [1, 8]", s.Depth)
		}
	case "btree":
		if d := btreeDepth(fp); s.Depth < 0 || s.Depth > d-1 {
			return s, fmt.Errorf("synth: btree: Depth %d, want [0, %d] for footprint %d", s.Depth, d-1, fp)
		}
	case "graph":
		if s.Degree == 0 {
			s.Degree = 4
		}
		if s.Degree < 1 || s.Degree > 16 || s.Degree&(s.Degree-1) != 0 {
			return s, fmt.Errorf("synth: graph: Degree %d, want a power of two in [1, 16]", s.Degree)
		}
		if n := graphNodes(fp, s.Degree); n < 16 {
			return s, fmt.Errorf("synth: graph: footprint %d too small for degree %d (%d nodes, want >= 16)", fp, s.Degree, n)
		}
	}
	if s.Name == "" {
		s.Name = s.AutoName()
	}
	return s, nil
}

// AutoName derives a deterministic, filename-safe name from the family and
// the knobs relevant to it: family-f<footprint>-i<iters>-s<seed>, plus
// -cl/-st/-al/-d/-dg/-sc/-c markers for non-default knobs.
func (s Spec) AutoName() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s-f%d-i%d-s%d", s.Family, s.FootprintWords, s.Iters, s.Seed)
	switch s.Family {
	case "chase":
		if s.Clusters > 0 {
			fmt.Fprintf(&sb, "-cl%d", s.Clusters)
		}
	case "stride":
		if s.Stride > 0 {
			fmt.Fprintf(&sb, "-st%d", s.Stride)
		}
		if s.Alias > 0 {
			fmt.Fprintf(&sb, "-al%d", s.Alias)
		}
	case "hash":
		if s.Depth > 0 {
			fmt.Fprintf(&sb, "-d%d", s.Depth)
		}
	case "btree":
		if s.Depth > 0 {
			fmt.Fprintf(&sb, "-d%d", s.Depth)
		}
	case "graph":
		if s.Degree > 0 {
			fmt.Fprintf(&sb, "-dg%d", s.Degree)
		}
	case "gather":
		if s.Scatter {
			sb.WriteString("-sc")
		}
	}
	if s.Compute > 0 {
		fmt.Fprintf(&sb, "-c%d", s.Compute)
	}
	return sb.String()
}

// SpecFromJSON decodes a Spec from JSON, rejecting unknown fields and
// trailing garbage — the strict entry point for externally-submitted specs
// (cmd/tgen -spec files and the serve package's /v1/workloads uploads).
// Decoding does not validate knob ranges; that happens when the spec is
// generated or registered, with the family-specific message.
func SpecFromJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("synth: spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("synth: spec: trailing data after JSON object")
	}
	if _, err := dec.Token(); err != nil && !errors.Is(err, io.EOF) {
		return Spec{}, fmt.Errorf("synth: spec: %w", err)
	}
	return s, nil
}

// Generate compiles the spec into a program. Equal specs generate
// bit-identical programs (instructions, labels, data image, and name).
func Generate(s Spec) (*preexec.Program, error) {
	n, err := s.normalize()
	if err != nil {
		return nil, err
	}
	return families[n.Family].gen(n), nil
}

// MustGenerate is Generate that panics on error, for specs validated ahead
// of time (the registry Build closures).
func MustGenerate(s Spec) *preexec.Program {
	p, err := Generate(s)
	if err != nil {
		panic(err)
	}
	return p
}
