package synth

import (
	"strings"
	"testing"

	"preexec/internal/cache"
	"preexec/internal/cpu"
	"preexec/internal/isa"
	"preexec/internal/program"
)

// smallSpecs returns one quick spec per family.
func smallSpecs() []Spec {
	return []Spec{
		{Family: "chase", Seed: 7, FootprintWords: 1 << 13, Iters: 4000},
		{Family: "chase", Seed: 7, FootprintWords: 1 << 13, Iters: 4000, Clusters: 64},
		{Family: "stride", Seed: 7, FootprintWords: 1 << 13, Iters: 4000, Stride: 9, Alias: 8},
		{Family: "hash", Seed: 7, FootprintWords: 1 << 13, Iters: 4000, Depth: 3},
		{Family: "btree", Seed: 7, FootprintWords: 1 << 13, Iters: 2000},
		{Family: "graph", Seed: 7, FootprintWords: 1 << 13, Iters: 2000, Degree: 4},
		{Family: "gather", Seed: 7, FootprintWords: 1 << 13, Iters: 4000, Scatter: true},
	}
}

func sameProgram(t *testing.T, a, b *program.Program) {
	t.Helper()
	if a.Name != b.Name {
		t.Fatalf("names differ: %q vs %q", a.Name, b.Name)
	}
	if a.Entry != b.Entry {
		t.Fatalf("%s: entries differ: %d vs %d", a.Name, a.Entry, b.Entry)
	}
	if len(a.Insts) != len(b.Insts) {
		t.Fatalf("%s: instruction counts differ: %d vs %d", a.Name, len(a.Insts), len(b.Insts))
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("%s: instruction %d differs: %v vs %v", a.Name, i, a.Insts[i], b.Insts[i])
		}
	}
	ra, rb := a.Data.Runs(), b.Data.Runs()
	if len(ra) != len(rb) {
		t.Fatalf("%s: data run counts differ: %d vs %d", a.Name, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Base != rb[i].Base || len(ra[i].Vals) != len(rb[i].Vals) {
			t.Fatalf("%s: data run %d differs", a.Name, i)
		}
		for j := range ra[i].Vals {
			if ra[i].Vals[j] != rb[i].Vals[j] {
				t.Fatalf("%s: data word %d of run %d differs", a.Name, j, i)
			}
		}
	}
}

// TestGenerateDeterministic pins the generator determinism contract: the
// same Spec yields a bit-identical program.
func TestGenerateDeterministic(t *testing.T) {
	for _, s := range smallSpecs() {
		p1, err := Generate(s)
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		p2, err := Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		sameProgram(t, p1, p2)
		// A different seed must change the data layout.
		s2 := s
		s2.Seed++
		s2.Name = ""
		p3 := MustGenerate(s2)
		if r1, r3 := p1.Data.Runs(), p3.Data.Runs(); len(r1) == len(r3) {
			differ := false
			for i := range r1 {
				for j := range r1[i].Vals {
					if j < len(r3[i].Vals) && r1[i].Vals[j] != r3[i].Vals[j] {
						differ = true
					}
				}
			}
			if !differ {
				t.Errorf("%s: different seeds produced identical data images", s.Family)
			}
		}
	}
}

// funcRun functionally executes p through the default hierarchy, counting
// instructions and L2 load misses.
func funcRun(t *testing.T, p *program.Program, maxInsts int64) (insts, l2miss int64) {
	t.Helper()
	st := cpu.New(p)
	h := cache.DefaultHierarchy()
	for !st.Halted && insts < maxInsts {
		e, err := st.Step()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		insts++
		if e.Inst.IsMem() {
			res := h.Access(e.EffAddr, e.Inst.Op == isa.ST)
			if e.Inst.Op == isa.LD && res == cache.MissL2 {
				l2miss++
			}
		}
	}
	return insts, l2miss
}

// TestFamiliesTerminateAndLoad checks every family's program halts and
// performs loads.
func TestFamiliesTerminateAndLoad(t *testing.T) {
	for _, s := range smallSpecs() {
		p := MustGenerate(s)
		insts, _ := funcRun(t, p, 2_000_000)
		if insts < 10_000 {
			t.Errorf("%s: only %d instructions", p.Name, insts)
		}
	}
}

// TestKnobSpaceMovesMissBehaviour checks the knobs actually span
// memory-behaviour space: footprints, clustering, aliasing, and probe depth
// all move the L2 miss profile in the engineered direction.
func TestKnobSpaceMovesMissBehaviour(t *testing.T) {
	miss := func(s Spec) (perKI float64) {
		p := MustGenerate(s)
		insts, m := funcRun(t, p, 2_000_000)
		return float64(m) / float64(insts) * 1000
	}
	big := Spec{Family: "chase", Seed: 3, FootprintWords: 1 << 17, Iters: 12_000}
	resident := Spec{Family: "chase", Seed: 3, FootprintWords: 1 << 12, Iters: 12_000}
	clustered := big
	clustered.Clusters = 512
	mb, mc := miss(big), miss(clustered)
	if mb < 20 {
		t.Errorf("uniform chase misses/KI = %.1f, want miss-heavy (>= 20)", mb)
	}
	// The resident ring's 512 lines see only compulsory cold misses
	// (crafty-like: nothing to tolerate in steady state).
	_, mrAbs := funcRun(t, MustGenerate(resident), 2_000_000)
	if mrAbs > 700 {
		t.Errorf("L2-resident chase misses = %d, want <= ~512 cold misses", mrAbs)
	}
	if mc >= mb*3/4 {
		t.Errorf("clustered chase misses/KI = %.1f, want well below uniform %.1f", mc, mb)
	}

	plain := Spec{Family: "stride", Seed: 3, FootprintWords: 1 << 12, Iters: 12_000, Stride: 9}
	aliased := plain
	aliased.Alias = 8
	mp, ma := miss(plain), miss(aliased)
	if ma < mp+5 {
		t.Errorf("aliased stride misses/KI = %.1f, want well above resident plain stream %.1f", ma, mp)
	}
}

func TestValidation(t *testing.T) {
	bad := []Spec{
		{Family: "nonesuch", FootprintWords: 1 << 12, Iters: 100},
		{Family: "chase", FootprintWords: 100, Iters: 100},   // not a power of two
		{Family: "chase", FootprintWords: 1 << 12, Iters: 0}, // no iterations
		{Family: "chase", FootprintWords: 1 << 12, Iters: 100, Clusters: 1},
		{Family: "stride", FootprintWords: 1 << 12, Iters: 100, Alias: 3},
		{Family: "stride", FootprintWords: 1 << 14, Iters: 100, Alias: 8}, // footprint too big to alias
		{Family: "hash", FootprintWords: 1 << 12, Iters: 100, Depth: 9},
		{Family: "graph", FootprintWords: 1 << 12, Iters: 100, Degree: 3},
		{Family: "chase", FootprintWords: 1 << 12, Iters: 100, Compute: 65},
	}
	for _, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("Generate(%+v) succeeded, want error", s)
		}
	}
	if _, err := Generate(Spec{Family: "gather", FootprintWords: 1 << 12, Iters: 100}); err != nil {
		t.Errorf("minimal valid spec rejected: %v", err)
	}
}

func TestAutoName(t *testing.T) {
	s := Spec{Family: "stride", Seed: 2, FootprintWords: 1 << 12, Iters: 500, Stride: 9, Alias: 4, Compute: 3}
	p := MustGenerate(s)
	want := "stride-f4096-i500-s2-st9-al4-c3"
	if p.Name != want {
		t.Errorf("auto name = %q, want %q", p.Name, want)
	}
	// Irrelevant knobs must not leak into the name.
	s2 := Spec{Family: "chase", Seed: 2, FootprintWords: 1 << 12, Iters: 500, Stride: 9, Degree: 8}
	if name := MustGenerate(s2).Name; strings.Contains(name, "st9") || strings.Contains(name, "dg8") {
		t.Errorf("chase auto name %q leaked irrelevant knobs", name)
	}
}

// TestZoo pins the curated corpus: valid specs, unique names, and valid
// workload (train + test) variants.
func TestZoo(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Zoo() {
		if seen[s.Name] {
			t.Errorf("duplicate zoo name %q", s.Name)
		}
		seen[s.Name] = true
		w, err := s.Workload()
		if err != nil {
			t.Errorf("zoo spec %q: %v", s.Name, err)
			continue
		}
		if w.Name != s.Name {
			t.Errorf("zoo workload name %q, want %q", w.Name, s.Name)
		}
	}
}

// TestWorkloadScaleAndTestVariant checks the registry contract: scale
// multiplies the run length and the test input is a smaller run.
func TestWorkloadScaleAndTestVariant(t *testing.T) {
	s := Spec{Family: "gather", Seed: 5, FootprintWords: 1 << 13, Iters: 3000}
	w, err := s.Workload()
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := funcRun(t, w.Build(1), 10_000_000)
	n2, _ := funcRun(t, w.Build(2), 10_000_000)
	if n2 < n1*3/2 {
		t.Errorf("scale 2 run (%d insts) should be ~2x scale 1 (%d)", n2, n1)
	}
	nt, _ := funcRun(t, w.BuildTest(1), 10_000_000)
	if nt >= n1 {
		t.Errorf("test input (%d insts) not smaller than train (%d)", nt, n1)
	}
}
