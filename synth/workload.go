package synth

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"preexec"
)

// Workload converts the spec into a registrable benchmark: Build(scale)
// regenerates the program with Iters*scale (bit-deterministic per scale),
// and BuildTest generates the spec's test variant — footprint/8, iters/4,
// footprint-tied knobs clamped — reproducing the paper's smaller "test
// input" methodology (Figure 7) for synthetic scenarios.
func (s Spec) Workload() (preexec.Workload, error) {
	n, err := s.normalize()
	if err != nil {
		return preexec.Workload{}, err
	}
	// Surface an invalid test variant now, not as a panic inside BuildTest.
	if _, err := n.testVariant().normalize(); err != nil {
		return preexec.Workload{}, fmt.Errorf("synth: %s: test variant: %w", n.Name, err)
	}
	return preexec.Workload{
		Name:        n.Name,
		Description: "synthetic " + n.Family + ": " + families[n.Family].Description,
		Build: func(scale int) *preexec.Program {
			return MustGenerate(n.scaled(scale))
		},
		BuildTest: func(scale int) *preexec.Program {
			return MustGenerate(n.testVariant().scaled(scale))
		},
	}, nil
}

// scaled multiplies the iteration count (the workload scale contract),
// saturating at the validation cap so Build can never fail on a spec that
// validated at scale 1.
func (s Spec) scaled(scale int) Spec {
	if scale > 1 {
		if s.Iters > maxIters/scale {
			s.Iters = maxIters
		} else {
			s.Iters *= scale
		}
	}
	return s
}

// testVariant derives the spec's smaller test input: an eighth of the
// footprint (so mid-size scenarios become L2-resident, as the paper's test
// inputs do for twolf and vpr.p) and a quarter of the iterations, with
// footprint-tied knobs clamped back into range.
func (s Spec) testVariant() Spec {
	s.Name += ".test"
	if s.FootprintWords >= 8*128 {
		s.FootprintWords /= 8
	} else {
		s.FootprintWords = 128
	}
	if s.Iters > 4 {
		s.Iters /= 4
	}
	if max := s.FootprintWords / 2 / 4; s.Clusters > max { // nodes/4
		s.Clusters = max
	}
	if max := s.FootprintWords / 2; s.Stride > max {
		s.Stride = max
	}
	if s.Family == "graph" {
		for s.Degree > 1 && graphNodes(s.FootprintWords, s.Degree) < 16 {
			s.Degree /= 2
		}
	}
	if s.Family == "btree" {
		if d := btreeDepth(s.FootprintWords); s.Depth > d-1 {
			s.Depth = d - 1
		}
	}
	return s
}

// Register compiles each spec and adds it to the global workload registry,
// making it addressable by name through preexec.WorkloadByName,
// EvaluateSuite, SweepBenches, and the command-line tools. Registration is
// atomic: on any error (invalid spec, name collision) the already-added
// specs of this call are rolled back.
func Register(specs ...Spec) error {
	var added []string
	for _, s := range specs {
		w, err := s.Workload()
		if err == nil {
			err = preexec.RegisterWorkload(w)
		}
		if err != nil {
			for _, name := range added {
				preexec.UnregisterWorkload(name)
			}
			return err
		}
		added = append(added, w.Name)
	}
	return nil
}

// WorkloadFromPRX wraps assembled .prx source as a registrable benchmark.
// The source must carry a .name directive; the program is fixed, so the
// scale multiplier is ignored and the test input is the program itself.
func WorkloadFromPRX(src []byte) (preexec.Workload, error) {
	p, err := Assemble(src)
	if err != nil {
		return preexec.Workload{}, err
	}
	if p.Name == "" {
		return preexec.Workload{}, fmt.Errorf("synth: .prx workload needs a .name directive")
	}
	build := func(int) *preexec.Program { return p }
	return preexec.Workload{
		Name:        p.Name,
		Description: "assembled .prx program",
		Build:       build,
		BuildTest:   build,
	}, nil
}

// LoadPRX reads and assembles a .prx file. A program without a .name
// directive is named after the file (base name, extension stripped);
// assembly errors are prefixed with the path.
func LoadPRX(path string) (*preexec.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if p.Name == "" {
		p.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return p, nil
}
