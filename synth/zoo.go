package synth

// Zoo returns a curated scenario corpus spanning every pattern family and
// the interesting corners of their knob spaces — the examples/scenariozoo
// walkthrough evaluates it, and it doubles as a ready-made grid for sweep
// experiments. The footprints are sized against the 256KB L2: "resident"
// variants have nothing for pre-execution to tolerate (crafty-like), the
// rest miss heavily.
func Zoo() []Spec {
	return []Spec{
		// Pointer chases: the uniform ring is the mcf-like floor (misses
		// feed miss addresses); clustering adds spatial locality; the
		// resident ring is a crafty-like "nothing to tolerate" case.
		{Name: "zoo.chase", Family: "chase", Seed: 1, FootprintWords: 1 << 16, Iters: 24_000},
		{Name: "zoo.chase.clustered", Family: "chase", Seed: 1, FootprintWords: 1 << 16, Iters: 24_000, Clusters: 256},
		{Name: "zoo.chase.resident", Family: "chase", Seed: 1, FootprintWords: 1 << 12, Iters: 24_000},

		// Strided streams: register-computed addresses (vpr.p-like high
		// coverage); the aliased variant thrashes four-plus streams through
		// the same L2 sets.
		{Name: "zoo.stride", Family: "stride", Seed: 1, FootprintWords: 1 << 16, Iters: 24_000, Stride: 9},
		{Name: "zoo.stride.alias", Family: "stride", Seed: 1, FootprintWords: 1 << 13, Iters: 24_000, Stride: 9, Alias: 8},

		// Hash probes: depth 1 is purely register-addressed, depth 3 is a
		// dependent probe chain.
		{Name: "zoo.hash", Family: "hash", Seed: 1, FootprintWords: 1 << 16, Iters: 24_000, Depth: 1},
		{Name: "zoo.hash.deep", Family: "hash", Seed: 1, FootprintWords: 1 << 16, Iters: 12_000, Depth: 3},

		// Tree, graph, and gather/scatter kernels.
		{Name: "zoo.btree", Family: "btree", Seed: 1, FootprintWords: 1 << 16, Iters: 8_000},
		{Name: "zoo.graph", Family: "graph", Seed: 1, FootprintWords: 1 << 16, Iters: 10_000, Degree: 4},
		{Name: "zoo.gather", Family: "gather", Seed: 1, FootprintWords: 1 << 16, Iters: 20_000},
		{Name: "zoo.scatter", Family: "gather", Seed: 1, FootprintWords: 1 << 16, Iters: 20_000, Scatter: true},
	}
}
